(* Property-based tests (qcheck, registered as alcotest cases).

   These check the library's core invariants over randomized inputs:
   data-structure laws, routing/CDG soundness, simulator conservation and
   determinism, and the Dally-Seitz theorem itself (acyclic CDG implies no
   deadlock under random traffic). *)

let count n = n (* default iteration count per property *)

(* ---- data structures ---- *)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains sorted" ~count:(count 200)
    QCheck.(list small_int)
    (fun keys ->
      let h = Heap.create () in
      List.iter (fun k -> Heap.add h k ()) keys;
      let rec drain acc =
        match Heap.pop h with Some (k, ()) -> drain (k :: acc) | None -> List.rev acc
      in
      drain [] = List.sort compare keys)

let prop_bitset_model =
  QCheck.Test.make ~name:"bitset agrees with a set model" ~count:(count 200)
    QCheck.(list (pair bool (int_bound 63)))
    (fun ops ->
      let b = Bitset.create 64 in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (add, i) ->
          if add then begin
            Bitset.add b i;
            Hashtbl.replace model i ()
          end
          else begin
            Bitset.remove b i;
            Hashtbl.remove model i
          end)
        ops;
      let expected = List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) model []) in
      Bitset.to_list b = expected && Bitset.cardinal b = List.length expected)

let prop_vec_roundtrip =
  QCheck.Test.make ~name:"vec of_list/to_list roundtrip" ~count:(count 200)
    QCheck.(list int)
    (fun l -> Vec.to_list (Vec.of_list l) = l)

let prop_permutations_are_permutations =
  QCheck.Test.make ~name:"iter_permutations yields permutations" ~count:(count 50)
    QCheck.(int_bound 4)
    (fun n ->
      let base = List.init n Fun.id in
      let ok = ref true in
      Combinat.iter_permutations
        (fun a -> if List.sort compare (Array.to_list a) <> base then ok := false)
        (Array.of_list base);
      !ok)

let prop_stats_mean =
  QCheck.Test.make ~name:"stats mean matches direct sum" ~count:(count 200)
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_exclusive 1000.0))
    (fun xs ->
      let s = Stats.create () in
      List.iter (Stats.add s) xs;
      let direct = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs) in
      Float.abs (Stats.mean s -. direct) < 1e-6)

(* ---- topology and routing ---- *)

let mesh_dims_gen =
  QCheck.make
    QCheck.Gen.(
      let* w = 2 -- 4 in
      let* h = 2 -- 4 in
      return [ w; h ])

let prop_mesh_xy_delivers_minimally =
  QCheck.Test.make ~name:"xy is minimal on random meshes" ~count:(count 20) mesh_dims_gen
    (fun dims ->
      let coords = Builders.mesh dims in
      let rt = Dimension_order.mesh coords in
      Routing.validate rt = Ok () && Properties.is_holds (Properties.minimal rt))

let prop_mesh_cdg_acyclic =
  QCheck.Test.make ~name:"xy CDG acyclic with valid numbering" ~count:(count 20) mesh_dims_gen
    (fun dims ->
      let rt = Dimension_order.mesh (Builders.mesh dims) in
      let cdg = Cdg.build rt in
      match Cdg.numbering cdg with
      | None -> false
      | Some f ->
        let ok = ref true in
        Topology.iter_channels
          (fun c -> List.iter (fun c' -> if f.(c) >= f.(c') then ok := false) (Cdg.succ cdg c))
          (Routing.topology rt);
        !ok)

let prop_cdg_soundness =
  QCheck.Test.make ~name:"every path step is a CDG edge (torus)" ~count:(count 10)
    QCheck.(pair (2 -- 4) (2 -- 4))
    (fun (a, b) ->
      let rt = Dimension_order.torus (Builders.torus [ a + 1; b + 1 ]) in
      let cdg = Cdg.build rt in
      let topo = Routing.topology rt in
      let n = Topology.num_nodes topo in
      let ok = ref true in
      for s = 0 to n - 1 do
        for d = 0 to n - 1 do
          if s <> d then begin
            let rec chk = function
              | c1 :: (c2 :: _ as rest) ->
                if not (List.mem c2 (Cdg.succ cdg c1)) then ok := false;
                chk rest
              | _ -> ()
            in
            chk (Routing.path_exn rt s d)
          end
        done
      done;
      !ok)

let prop_paper_net_intents_valid =
  (* random small access-ring specs build into consistent networks *)
  let spec_gen =
    QCheck.make
      QCheck.Gen.(
        let* ring = 6 -- 12 in
        let* a1 = 1 -- 4 in
        let* a2 = 1 -- 4 in
        let* d1 = 2 -- (ring - 1) in
        let* d2 = 2 -- (ring - 1) in
        let* e2 = 1 -- (ring - 1) in
        return
          {
            Paper_nets.s_name = "rand";
            s_ring_len = ring;
            s_msgs =
              [
                { m_label = "A"; m_source = Paper_nets.Shared; m_access = a1; m_entry = 0; m_dist = d1 };
                { m_label = "B"; m_source = Paper_nets.Shared; m_access = a2; m_entry = e2; m_dist = d2 };
              ];
          })
  in
  QCheck.Test.make ~name:"random access-ring nets are consistent" ~count:(count 50) spec_gen
    (fun spec ->
      (* two messages from the shared source with the same destination node
         would make the oblivious table ambiguous; such specs are invalid *)
      (match spec.Paper_nets.s_msgs with
      | [ m1; m2 ] ->
        QCheck.assume
          ((m1.Paper_nets.m_entry + m1.m_dist) mod spec.s_ring_len
          <> (m2.Paper_nets.m_entry + m2.m_dist) mod spec.s_ring_len)
      | _ -> ());
      let net = Paper_nets.build spec in
      let rt = Cd_algorithm.of_net net in
      Routing.validate rt = Ok ()
      && Topology.strongly_connected net.Paper_nets.topo
      && List.for_all2
           (fun (m : Paper_nets.msg_spec) (i : Paper_nets.intent) ->
             Paper_nets.access_channel_count net i = m.m_access
             && List.length (Paper_nets.in_cycle_channels net i) = m.m_dist
             && Routing.path_exn rt i.i_src i.i_dst = i.i_path)
           spec.Paper_nets.s_msgs net.Paper_nets.intents)

(* ---- simulator ---- *)

let schedule_gen coords =
  let n = Topology.num_nodes coords.Builders.topo in
  QCheck.make
    QCheck.Gen.(
      let msg i =
        let* s = 0 -- (n - 1) in
        let* d = 0 -- (n - 1) in
        let* len = 1 -- 6 in
        let* at = 0 -- 10 in
        return (Schedule.message ~length:len ~at (Printf.sprintf "m%d" i) s (if d = s then (d + 1) mod n else d))
      in
      let* k = 1 -- 6 in
      let rec build i acc = if i = k then return (List.rev acc) else
          let* m = msg i in
          build (i + 1) (m :: acc)
      in
      build 0 [])

let mesh3 = Builders.mesh [ 3; 3 ]
let mesh3_rt = Dimension_order.mesh mesh3

let prop_acyclic_never_deadlocks =
  (* Dally-Seitz: random traffic on an acyclic-CDG algorithm always delivers *)
  QCheck.Test.make ~name:"acyclic CDG => no deadlock (random schedules)" ~count:(count 100)
    (schedule_gen mesh3)
    (fun sched ->
      match Engine.run mesh3_rt sched with
      | Engine.All_delivered { messages; _ } ->
        List.for_all
          (fun (r : Engine.message_result) ->
            match (r.r_injected_at, r.r_delivered_at) with
            | Some i, Some d -> d >= i
            | _ -> false)
          messages
      | Engine.Deadlock _ | Engine.Cutoff _ | Engine.Recovered _ -> false)

let prop_sim_deterministic =
  QCheck.Test.make ~name:"simulation replays identically" ~count:(count 50)
    (schedule_gen mesh3)
    (fun sched -> Engine.run mesh3_rt sched = Engine.run mesh3_rt sched)

let ring5 = Builders.ring ~unidirectional:true 5
let ring5_rt = Ring_routing.clockwise ring5

let prop_ring_outcomes_wellformed =
  (* on a cyclic substrate, outcomes are delivery or a closed deadlock *)
  QCheck.Test.make ~name:"ring outcomes are delivery or closed deadlock" ~count:(count 100)
    (schedule_gen ring5)
    (fun sched ->
      match Engine.run ring5_rt sched with
      | Engine.All_delivered _ -> true
      | Engine.Cutoff _ | Engine.Recovered _ -> false
      | Engine.Deadlock d ->
        d.Engine.d_wait_cycle <> []
        && List.for_all
             (fun (b : Engine.blocked_info) -> b.Engine.b_holder <> None || b.b_wants <> [])
             d.Engine.d_blocked)

let prop_buffer_capacity_preserves_delivery =
  QCheck.Test.make ~name:"bigger buffers never break delivery on acyclic nets"
    ~count:(count 50) (schedule_gen mesh3)
    (fun sched ->
      let run cap =
        let config = { Engine.default_config with buffer_capacity = cap } in
        match Engine.run ~config mesh3_rt sched with
        | Engine.All_delivered { finished_at; _ } -> Some finished_at
        | _ -> None
      in
      match (run 1, run 3) with
      | Some t1, Some t3 -> t3 <= t1 (* more buffering can only help or tie *)
      | _ -> false)

(* ---- switching disciplines ---- *)

(* Cross-discipline containment on an acyclic-CDG net: wormhole delivers
   everything there (Dally-Seitz), and virtual cut-through and
   store-and-forward only ever hold {e more} buffering per hop, never
   less, so each must deliver (at least) every message wormhole delivers.
   Store-and-forward runs provision whole-packet buffers, which the
   engine requires. *)
let prop_disciplines_deliver_superset =
  QCheck.Test.make ~name:"VCT/SAF deliver a superset of wormhole (acyclic CDG)"
    ~count:(count 60) (schedule_gen mesh3)
    (fun sched ->
      let max_len =
        List.fold_left (fun acc (m : Schedule.message_spec) -> max acc m.ms_length) 1 sched
      in
      let run discipline buffer_capacity =
        let config = { Engine.default_config with discipline; buffer_capacity } in
        Engine.run ~config mesh3_rt sched
      in
      let delivered = function
        | Engine.All_delivered { messages; _ } ->
          List.filter_map
            (fun (r : Engine.message_result) ->
              Option.map (fun _ -> r.r_label) r.r_delivered_at)
            messages
        | _ -> []
      in
      let wormhole = run Engine.Wormhole 1 in
      let vct = delivered (run Engine.Virtual_cut_through 1) in
      let saf = delivered (run Engine.Store_and_forward max_len) in
      match wormhole with
      | Engine.All_delivered _ ->
        List.for_all
          (fun l -> List.mem l vct && List.mem l saf)
          (delivered wormhole)
      | _ -> false)

(* The refactor contract from the other side: asking for wormhole
   explicitly is the pre-parameterization engine bit-for-bit, witness
   payloads and deadlock class included (cyclic ring, so deadlock
   outcomes are exercised too). *)
let prop_wormhole_discipline_identity =
  QCheck.Test.make ~name:"explicit wormhole discipline = default engine (bit-for-bit)"
    ~count:(count 60) (schedule_gen ring5)
    (fun sched ->
      let config = { Engine.default_config with discipline = Engine.Wormhole } in
      Engine.run ~config ring5_rt sched = Engine.run ring5_rt sched)

(* ---- fault injection and recovery ---- *)

let fault_params_gen =
  QCheck.make
    QCheck.Gen.(
      let* seed = 0 -- 100_000 in
      let* failures = 0 -- 2 in
      let* stalls = 0 -- 3 in
      let* drop = bool in
      return (seed, failures, stalls, drop))
    ~print:(fun (seed, failures, stalls, drop) ->
      Printf.sprintf "seed=%d failures=%d stalls=%d drop=%b" seed failures stalls drop)

let retry_limit = 3

let recovery_config faults =
  {
    Engine.default_config with
    faults;
    recovery = Some { Engine.default_recovery with trigger = Engine.Watchdog 16; retry_limit; backoff = 4 };
  }

let random_faults coords sched (seed, failures, stalls, drop) =
  let rng = Rng.create seed in
  let drops =
    if drop then
      match sched with [] -> [] | (m : Schedule.message_spec) :: _ -> [ m.ms_label ]
    else []
  in
  Fault.random ~link_failures:failures ~stalls ~max_stall:12 ~drops ~horizon:60 rng
    coords.Builders.topo

(* the satellite property: recovery with a retry cap can never hang -- every
   run ends delivered, cut off, or as a bounded-retries recovery report *)
let prop_recovery_terminates coords rt name =
  QCheck.Test.make ~name ~count:(count 60)
    QCheck.(pair (schedule_gen coords) fault_params_gen)
    (fun (sched, params) ->
      let config = recovery_config (random_faults coords sched params) in
      match Engine.run ~config rt sched with
      | Engine.All_delivered _ | Engine.Cutoff _ -> true
      | Engine.Deadlock _ -> false (* recovery must preempt any permanent block *)
      | Engine.Recovered { stats; _ } ->
        List.for_all
          (fun (s : Engine.retry_stat) ->
            s.Engine.t_retries <= retry_limit + 1
            && (s.t_fate <> Engine.Gave_up || s.t_retries = retry_limit + 1))
          stats)

let prop_recovery_terminates_mesh =
  prop_recovery_terminates mesh3 mesh3_rt "recovery+cap terminates (mesh, random faults)"

let prop_recovery_terminates_ring =
  prop_recovery_terminates ring5 ring5_rt "recovery+cap terminates (ring, random faults)"

let prop_faulted_runs_deterministic =
  QCheck.Test.make ~name:"faulted runs replay identically" ~count:(count 40)
    QCheck.(pair (schedule_gen ring5) fault_params_gen)
    (fun (sched, params) ->
      let config = recovery_config (random_faults ring5 sched params) in
      Engine.run ~config ring5_rt sched = Engine.run ~config ring5_rt sched)

(* ---- differential: singleton-adaptive vs oblivious ---- *)

(* The adaptive engine run with [Adaptive.of_oblivious rt] (every header has
   exactly one option) must reproduce the oblivious engine exactly.  This is
   the permanent regression gate for the shared switching kernel: the two
   entry points are thin shims over one core, and this property pins the
   singleton case across random schedules, arbitrations, buffer capacities
   and fault plans.

   The generators stay inside the semantic domain the two engines share by
   contract: wormhole switching, no adversarial holds, fault plans made of
   message drops only, recovery without a reroute.  Outside it the engines
   differ by design -- adaptive headers steer around down channels instead
   of waiting on them, and ignore per-channel holds -- so link failures and
   stalls are exercised by their own tests, not this equivalence. *)

let arbitration_gen labels =
  QCheck.Gen.(
    let* use_priority = bool in
    if not use_priority then return Engine.Fifo
    else
      let* order = shuffle_l labels in
      let* keep = 0 -- List.length order in
      return (Engine.Priority (List.filteri (fun i _ -> i < keep) order)))

let drops_gen labels =
  QCheck.Gen.(
    let* mask = flatten_l (List.map (fun l -> map (fun b -> (b, l)) bool) labels) in
    let drop_list = List.filter_map (fun (b, l) -> if b then Some l else None) mask in
    let* ats = flatten_l (List.map (fun l -> map (fun t -> (l, t)) (0 -- 40)) drop_list) in
    return ats)

let recovery_gen =
  QCheck.Gen.(
    let* on = bool in
    if not on then return None
    else
      let* watchdog = 8 -- 32 in
      let* retry_limit = 0 -- 3 in
      let* backoff = 1 -- 8 in
      return
        (Some
           { Engine.default_recovery with trigger = Engine.Watchdog watchdog; retry_limit;
             backoff }))

let differential_case_gen coords =
  let sched_gen = schedule_gen coords in
  QCheck.make
    ~print:(fun (sched, arb, cap, drops, recovery) ->
      Printf.sprintf "sched=[%s] arb=%s cap=%d drops=[%s] recovery=%s"
        (String.concat "; "
           (List.map
              (fun (m : Schedule.message_spec) ->
                Printf.sprintf "%s:%d->%d len=%d at=%d" m.ms_label m.ms_src m.ms_dst
                  m.ms_length m.ms_inject_at)
              sched))
        (match arb with
        | Engine.Fifo -> "fifo"
        | Engine.Priority o -> "priority:" ^ String.concat ">" o)
        cap
        (String.concat ", "
           (List.map (fun (l, t) -> Printf.sprintf "%s@%d" l t) drops))
        (match recovery with
        | None -> "off"
        | Some r ->
          Printf.sprintf "%s retries=%d backoff=%d"
            (match r.Engine.trigger with
            | Engine.Watchdog w -> Printf.sprintf "watchdog=%d" w
            | Engine.Detect c ->
              Printf.sprintf "detect(bound=%d,backstop=%d)" c.Obs_detect.bound
                c.Obs_detect.backstop)
            r.Engine.retry_limit r.Engine.backoff))
    QCheck.Gen.(
      let* sched = QCheck.gen sched_gen in
      let labels = List.map (fun (m : Schedule.message_spec) -> m.ms_label) sched in
      let* arb = arbitration_gen labels in
      let* cap = 1 -- 3 in
      let* drops = drops_gen labels in
      let* recovery = recovery_gen in
      return (sched, arb, cap, drops, recovery))

(* Since the kernel unification the two entry points share one outcome
   type, so the equivalence check is plain structural equality -- witness
   payloads (blocked set, wait cycle, occupancy) included. *)
let prop_singleton_adaptive_matches_oblivious coords rt name =
  let ad = Adaptive.of_oblivious rt in
  QCheck.Test.make ~name ~count:(count 80) (differential_case_gen coords)
    (fun (sched, arbitration, buffer_capacity, drops, recovery) ->
      let faults =
        Fault.make (List.map (fun (label, at) -> Fault.Message_drop { label; at }) drops)
      in
      let config =
        { Engine.default_config with arbitration; buffer_capacity; faults; recovery }
      in
      let oblivious = Engine.run ~config rt sched in
      let adaptive = Adaptive_engine.run ~config ad sched in
      if oblivious <> adaptive then
        QCheck.Test.fail_reportf "engines diverge: oblivious %s, adaptive %s"
          (Engine.outcome_string oblivious)
          (Engine.outcome_string adaptive)
      else true)

let prop_differential_mesh =
  prop_singleton_adaptive_matches_oblivious mesh3 mesh3_rt
    "adaptive(of_oblivious) = oblivious (mesh, drops+recovery)"

let prop_differential_ring =
  prop_singleton_adaptive_matches_oblivious ring5 ring5_rt
    "adaptive(of_oblivious) = oblivious (ring, deadlock witnesses)"

(* ---- random spanning-tree routing on random digraphs ---- *)

(* Build a random strongly-connected topology (a ring plus random chords)
   and an oblivious routing algorithm from per-destination in-trees (BFS
   trees toward each destination).  This exercises Topology/Routing/Cdg on
   structures far from the regular grids. *)
let random_net_gen =
  QCheck.make
    QCheck.Gen.(
      let* n = 4 -- 8 in
      let* chords = 0 -- 6 in
      let* seed = 0 -- 10_000 in
      return (n, chords, seed))

let build_random_net (n, chords, seed) =
  let rng = Rng.create seed in
  let topo = Topology.create () in
  for i = 0 to n - 1 do
    ignore (Topology.add_node topo (Printf.sprintf "v%d" i))
  done;
  for i = 0 to n - 1 do
    ignore (Topology.add_channel topo i ((i + 1) mod n))
  done;
  for _ = 1 to chords do
    let a = Rng.int rng n and b = Rng.int rng n in
    if a <> b && Topology.find_channel topo a b = None then
      ignore (Topology.add_channel topo a b)
  done;
  let rt =
    Routing.create ~name:"bfs-tree" topo (fun input dest ->
        let here = Routing.current_node topo input in
        if here = dest then None
        else
          (* next hop along a BFS shortest path toward dest (deterministic:
             first channel in adjacency order on a shortest path) *)
          let dist = Topology.distance_matrix topo in
          Topology.out_channels topo here
          |> List.find_opt (fun c -> dist.(Topology.dst topo c).(dest) = dist.(here).(dest) - 1))
  in
  (topo, rt)

let prop_random_net_routing_valid =
  QCheck.Test.make ~name:"BFS-tree routing delivers on random digraphs" ~count:(count 40)
    random_net_gen
    (fun params ->
      let _, rt = build_random_net params in
      Routing.validate rt = Ok ())

let prop_random_net_cdg_sound =
  QCheck.Test.make ~name:"CDG soundness on random digraphs" ~count:(count 25) random_net_gen
    (fun params ->
      let topo, rt = build_random_net params in
      let cdg = Cdg.build rt in
      let n = Topology.num_nodes topo in
      let ok = ref true in
      for s = 0 to n - 1 do
        for d = 0 to n - 1 do
          if s <> d then begin
            let rec chk = function
              | c1 :: (c2 :: _ as rest) ->
                if not (List.mem c2 (Cdg.succ cdg c1)) then ok := false;
                chk rest
              | _ -> ()
            in
            chk (Routing.path_exn rt s d)
          end
        done
      done;
      !ok)

let prop_random_net_acyclic_implies_safe =
  (* Dally-Seitz on random structures: when the CDG happens to be acyclic,
     random traffic never deadlocks; when the model checker says a message
     population deadlocks, the CDG must be cyclic (contrapositive). *)
  QCheck.Test.make ~name:"acyclic CDG => random traffic delivers (random digraphs)"
    ~count:(count 25) random_net_gen
    (fun ((n, _, seed) as params) ->
      let _, rt = build_random_net params in
      let cdg = Cdg.build rt in
      let rng = Rng.create (seed + 17) in
      let sched =
        List.init 5 (fun i ->
            let s = Rng.int rng n in
            let d = (s + 1 + Rng.int rng (n - 1)) mod n in
            Schedule.message ~length:(1 + Rng.int rng 4) ~at:(Rng.int rng 5)
              (Printf.sprintf "m%d" i) s d)
      in
      match Engine.run rt sched with
      | Engine.All_delivered _ -> true
      | Engine.Cutoff _ | Engine.Recovered _ -> false
      | Engine.Deadlock _ -> not (Cdg.is_acyclic cdg))

(* ---- synthesis existence checker on the random digraphs ---- *)

let prop_synth_differential =
  (* Both sides of the existence verdict, backed the hard way.  "Exists"
     must ship a routing that certifies (Verify: Deadlock_free, zero
     E-severity diagnostics from either pipeline).  "Impossible" must ship
     a witness that machine-checks, and the bounded greedy routing family
     may contain no acyclic-CDG member -- such a member would itself be a
     deadlock-free routing, contradicting the verdict. *)
  QCheck.Test.make ~name:"synthesis verdict matches certificate / family sweep"
    ~count:(count 25) random_net_gen
    (fun params ->
      let topo, _ = build_random_net params in
      match Synth.synthesize topo with
      | Ok (rt, plan) ->
        let report = Verify.analyze ~quick:true rt in
        let certified =
          match report.Verify.conclusion with
          | Verify.Deadlock_free _ -> true
          | _ -> false
        in
        certified
        && Diagnostic.errors (Verify.diagnostics report) = []
        && Diagnostic.errors (Synth.diagnostics topo (Ok (rt, plan))) = []
      | Error w ->
        Synth.check_witness topo w
        && List.for_all
             (fun rt -> not (Cdg.is_acyclic (Cdg.build rt)))
             (Synth.greedy_family topo))

(* ---- three-sharer ground truth vs Theorem-5 checker ---- *)

let three_sharer_gen =
  QCheck.make
    QCheck.Gen.(
      let* perm = oneofl [ (2, 3, 4); (2, 4, 3); (3, 2, 4); (3, 4, 2); (4, 2, 3); (4, 3, 2) ] in
      let* g1 = 2 -- 4 in
      let* g2 = 2 -- 4 in
      let* g3 = 2 -- 4 in
      let* ov = 1 -- 2 in
      return (perm, (g1, g2, g3), ov))

let prop_theorem5_matches_search =
  QCheck.Test.make ~name:"theorem-5 checker agrees with exhaustive search"
    ~count:(count 12) three_sharer_gen
    (fun ((a1, a2, a3), (g1, g2, g3), ov) ->
      let spec =
        {
          Paper_nets.s_name = "rand3";
          s_ring_len = g1 + g2 + g3;
          s_msgs =
            [
              { m_label = "M1"; m_source = Paper_nets.Shared; m_access = a1; m_entry = 0; m_dist = g1 + ov };
              { m_label = "M2"; m_source = Paper_nets.Shared; m_access = a2; m_entry = g1; m_dist = g2 + ov };
              { m_label = "M3"; m_source = Paper_nets.Shared; m_access = a3; m_entry = g1 + g2; m_dist = g3 + ov };
            ];
        }
      in
      let net = Paper_nets.build spec in
      let rt = Cd_algorithm.of_net net in
      let cdg = Cdg.build rt in
      match Cdg.elementary_cycles cdg with
      | [ cycle ] -> (
        let _, verdict = Cycle_analysis.classify cdg cycle in
        let templates = List.map (fun i -> Explorer.intent_template net i) net.Paper_nets.intents in
        let space = { (Explorer.default_space templates) with buffers = [ 1 ] } in
        let found = Explorer.is_deadlock_found (Explorer.explore rt space) in
        match verdict with
        | Cycle_analysis.Unreachable _ -> not found
        | Cycle_analysis.Deadlock_reachable _ -> found
        | Cycle_analysis.Needs_search _ -> true)
      | _ -> QCheck.assume_fail ())

(* ---- fault-plan parse/print round-trip ---- *)

(* Parenthesized mesh node names ("n(0,2)") carry commas, and vcs:2 puts
   "#1" suffixes on half the channels, so this exercises every corner of
   the plan grammar the printer can emit. *)
let plan_topo_gen =
  QCheck.make
    QCheck.Gen.(
      let* pick = 0 -- 2 in
      return
        (match pick with
        | 0 -> ("mesh-3x3-vc2", (Builders.mesh ~vcs:2 [ 3; 3 ]).Builders.topo)
        | 1 -> ("figure1", (Paper_nets.figure1 ()).Paper_nets.topo)
        | _ -> ("ring-5", (Builders.ring ~unidirectional:true 5).Builders.topo)))
    ~print:fst

let prop_fault_plan_roundtrip =
  QCheck.Test.make ~name:"fault plan parse of print is the identity" ~count:(count 200)
    QCheck.(pair plan_topo_gen (make Gen.(0 -- 100_000) ~print:string_of_int))
    (fun ((_, topo), seed) ->
      let rng = Rng.create seed in
      let pick lo hi = lo + Rng.int rng (hi - lo + 1) in
      let link_failures = pick 0 2 in
      let stalls = pick 0 3 in
      let drops =
        match pick 0 2 with
        | 0 -> []
        | 1 -> [ "m1" ]
        | _ -> [ "m1"; "worm-2" ]
      in
      let plan = Fault.random ~link_failures ~stalls ~max_stall:9 ~drops ~horizon:50 rng topo in
      (* an empty plan prints as the unparseable "(no faults)" placeholder *)
      QCheck.assume (not (Fault.is_empty plan));
      let printed = Format.asprintf "%a" (Fault.pp topo) plan in
      match Fault.parse topo printed with
      | Ok plan' -> Fault.events plan' = Fault.events plan
      | Error e -> QCheck.Test.fail_reportf "parse of %S failed: %s" printed e)

let suite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "qcheck"
    [
      suite "data-structures"
        [ prop_heap_sorts; prop_bitset_model; prop_vec_roundtrip;
          prop_permutations_are_permutations; prop_stats_mean ];
      suite "routing-cdg"
        [ prop_mesh_xy_delivers_minimally; prop_mesh_cdg_acyclic; prop_cdg_soundness;
          prop_paper_net_intents_valid ];
      suite "simulator"
        [ prop_acyclic_never_deadlocks; prop_sim_deterministic; prop_ring_outcomes_wellformed;
          prop_buffer_capacity_preserves_delivery ];
      suite "disciplines"
        [ prop_disciplines_deliver_superset; prop_wormhole_discipline_identity ];
      suite "fault-recovery"
        [ prop_recovery_terminates_mesh; prop_recovery_terminates_ring;
          prop_faulted_runs_deterministic; prop_fault_plan_roundtrip ];
      suite "differential" [ prop_differential_mesh; prop_differential_ring ];
      suite "random-nets"
        [ prop_random_net_routing_valid; prop_random_net_cdg_sound;
          prop_random_net_acyclic_implies_safe ];
      suite "theorem5" [ prop_theorem5_matches_search ];
      suite "synthesis" [ prop_synth_differential ];
    ]
