(* Online deadlock detection: the Obs_detect incremental wait-for cycle
   detector, offline via [scan] over recorded event streams and online via
   the engine's [Detect] recovery trigger. *)

let check = Alcotest.check
let cb = Alcotest.bool
let qtest = QCheck_alcotest.to_alcotest
let dcfg = Obs_detect.default_config
let bound = dcfg.Obs_detect.bound

let recorded_run ?config rt sched =
  let sink, events = Obs.recorder () in
  let out = Engine.run ?config ~obs:sink rt sched in
  (out, events ())

let aborts events =
  List.length (List.filter (function Obs_event.Abort _ -> true | _ -> false) events)

let delivered_labels = function
  | Engine.All_delivered { messages; _ } | Engine.Cutoff { messages; _ } ->
    List.filter_map
      (fun (m : Engine.message_result) ->
        if m.r_delivered_at <> None then Some m.r_label else None)
      messages
  | Engine.Recovered { stats; _ } ->
    List.filter_map
      (fun (s : Engine.retry_stat) ->
        if s.t_fate = Engine.Delivered then Some s.t_label else None)
      stats
  | Engine.Deadlock _ -> []

(* ---- offline ground truth (fault-free, so every Deadlock outcome carries
   a genuine wait-for knot) ---- *)

let schedule_gen coords =
  let n = Topology.num_nodes coords.Builders.topo in
  QCheck.make
    QCheck.Gen.(
      let msg i =
        let* s = 0 -- (n - 1) in
        let* d = 0 -- (n - 1) in
        let* len = 1 -- 6 in
        let* at = 0 -- 10 in
        return
          (Schedule.message ~length:len ~at
             (Printf.sprintf "m%d" i)
             s
             (if d = s then (d + 1) mod n else d))
      in
      let* k = 1 -- 6 in
      let rec build i acc =
        if i = k then return (List.rev acc)
        else
          let* m = msg i in
          build (i + 1) (m :: acc)
      in
      build 0 [])

let ring5 = Builders.ring ~unidirectional:true 5
let ring5_rt = Ring_routing.clockwise ring5
let mesh3 = Builders.mesh [ 3; 3 ]
let mesh3_rt = Dimension_order.mesh mesh3

let prop_scan_matches_outcome =
  (* the detector's completeness/soundness contract against the engine's own
     verdict: every Deadlock outcome is confirmed within the latency bound of
     the cycle the engine declares the state permanently blocked, and runs
     that deliver (or cut off) never produce a detection *)
  QCheck.Test.make ~name:"scan flags exactly the Deadlock outcomes, within the bound"
    ~count:150 (schedule_gen ring5)
    (fun sched ->
      let out, events = recorded_run ring5_rt sched in
      let dets = Obs_detect.scan dcfg events in
      match out with
      | Engine.Deadlock d ->
        dets <> []
        && List.exists
             (fun (k : Obs_detect.detection) -> k.dk_cycle <= d.Engine.d_cycle + bound)
             dets
      | Engine.All_delivered _ | Engine.Cutoff _ -> dets = []
      | Engine.Recovered _ -> false)

let prop_no_detection_on_acyclic =
  QCheck.Test.make ~name:"acyclic mesh runs never trip the detector" ~count:100
    (schedule_gen mesh3)
    (fun sched ->
      let _, events = recorded_run mesh3_rt sched in
      Obs_detect.scan dcfg events = [])

let prop_scan_deterministic =
  QCheck.Test.make ~name:"scan is a pure function of the event stream" ~count:50
    (schedule_gen ring5)
    (fun sched ->
      let _, events = recorded_run ring5_rt sched in
      Obs_detect.scan dcfg events = Obs_detect.scan dcfg events)

(* ---- online: the Detect trigger on the torus tornado knot ---- *)

let torus5 = Builders.torus [ 5; 5 ]
let torus5_rt = Dimension_order.torus torus5
let tornado = Traffic.permutation_schedule (Traffic.tornado torus5) ~coords:torus5 ~length:8
let detect_recovery = { Engine.default_recovery with trigger = Engine.Detect dcfg }
let watchdog_recovery = { Engine.default_recovery with trigger = Engine.Watchdog 32 }
let with_recovery r = { Engine.default_config with recovery = Some r }

let tornado_runs =
  lazy
    (let det = recorded_run ~config:(with_recovery detect_recovery) torus5_rt tornado in
     let wd = recorded_run ~config:(with_recovery watchdog_recovery) torus5_rt tornado in
     (det, wd))

let test_tornado_targeted_recovery () =
  let (det_out, det_events), (wd_out, wd_events) = Lazy.force tornado_runs in
  check cb "detect aborts strictly fewer messages" true (aborts det_events < aborts wd_events);
  let det_set = delivered_labels det_out and wd_set = delivered_labels wd_out in
  check cb "detect delivers a superset of the watchdog" true
    (List.for_all (fun l -> List.mem l det_set) wd_set);
  check cb "detect delivers the whole permutation" true (List.length det_set = 25)

let test_tornado_detection_within_bound () =
  let (_, det_events), _ = Lazy.force tornado_runs in
  let truth, _ = recorded_run torus5_rt tornado in
  let knot_cycle =
    match truth with
    | Engine.Deadlock d -> d.Engine.d_cycle
    | o -> Alcotest.fail ("tornado without recovery should deadlock, got " ^ Engine.outcome_string o)
  in
  match
    List.find_map
      (function Obs_event.Deadlock_detected { cycle; _ } -> Some cycle | _ -> None)
      det_events
  with
  | None -> Alcotest.fail "no Deadlock_detected event in the detect run"
  | Some c -> check cb "first detection within the bound" true (c <= knot_cycle + bound)

let test_victim_event_ordering () =
  (* every Victim_aborted is announced by a preceding Deadlock_detected that
     lists the victim, and is followed by the engine's Abort with reason
     "deadlock" for the same label *)
  let (_, det_events), _ = Lazy.force tornado_runs in
  let events = Array.of_list det_events in
  let n = Array.length events in
  let victims = ref 0 in
  Array.iteri
    (fun i ev ->
      match ev with
      | Obs_event.Victim_aborted { label; policy; _ } ->
        incr victims;
        check cb "minimal policy name" true (policy = "minimal");
        let announced = ref false and aborted = ref false in
        for j = 0 to i - 1 do
          match events.(j) with
          | Obs_event.Deadlock_detected { victims = vs; _ } when List.mem label vs ->
            announced := true
          | _ -> ()
        done;
        for j = i + 1 to n - 1 do
          match events.(j) with
          | Obs_event.Abort { label = l; reason = "deadlock"; _ } when l = label ->
            aborted := true
          | _ -> ()
        done;
        check cb (label ^ " announced by a detection") true !announced;
        check cb (label ^ " aborted with reason deadlock") true !aborted
      | _ -> ())
    events;
  check cb "at least one victim" true (!victims > 0)

let test_postmortem_sections () =
  let (_, det_events), _ = Lazy.force tornado_runs in
  let pm = Obs.Postmortem.analyze ~rt:torus5_rt det_events in
  check cb "post-mortem records detections" true (pm.Obs.Postmortem.pm_detections <> []);
  let victim_events =
    List.filter_map
      (function Obs_event.Victim_aborted { label; _ } -> Some label | _ -> None)
      det_events
  in
  check cb "post-mortem victims match the event stream" true
    (List.map fst pm.Obs.Postmortem.pm_victims = victim_events)

(* ---- differential: the seeded fault corpus of EXP-FR ---- *)

let test_fault_corpus_superset () =
  (* with the same 32-cycle no-progress backstop, targeted recovery must
     deliver every message the plain watchdog delivers on the seeded
     campaigns of exp_fault *)
  let detect32 =
    {
      Engine.default_recovery with
      trigger = Engine.Detect { dcfg with Obs_detect.backstop = 32 };
    }
  in
  let watchdog32 = { Engine.default_recovery with trigger = Engine.Watchdog 32 } in
  let nets =
    [
      ("figure1", Paper_nets.figure1 ());
      ("figure2", Paper_nets.figure2 ());
      ("figure3c", Paper_nets.figure3 `C);
      ("figure3f", Paper_nets.figure3 `F);
    ]
  in
  List.iter
    (fun (name, net) ->
      let rt = Cd_algorithm.of_net net in
      let sched =
        List.map
          (fun (it : Paper_nets.intent) ->
            Schedule.message ~length:4 it.i_label it.i_src it.i_dst)
          net.Paper_nets.intents
      in
      let rng = Rng.create 7 in
      let faults =
        Fault.random ~link_failures:1 ~stalls:2 ~max_stall:16 ~horizon:15 rng
          net.Paper_nets.topo
      in
      let run r =
        Engine.run ~config:{ Engine.default_config with faults; recovery = Some r } rt sched
      in
      let det = delivered_labels (run detect32) and wd = delivered_labels (run watchdog32) in
      check cb (name ^ ": detect delivers a superset under seeded faults") true
        (List.for_all (fun l -> List.mem l det) wd))
    nets

(* ---- static lint for the Detect config ---- *)

let test_detect_config_lint () =
  let codes diags = List.map (fun d -> d.Diagnostic.code) diags in
  check (Alcotest.list Alcotest.string) "nonpositive bound is E045" [ "E045" ]
    (codes (Lint.detect_config ~algorithm:"cd" ~bound:0 ~backstop:512));
  check (Alcotest.list Alcotest.string) "backstop <= bound is W046" [ "W046" ]
    (codes (Lint.detect_config ~algorithm:"cd" ~bound:16 ~backstop:16));
  check (Alcotest.list Alcotest.string) "sane config is clean" []
    (codes (Lint.detect_config ~algorithm:"cd" ~bound:16 ~backstop:512))

(* ---- campaign determinism across domain counts ---- *)

let capture exp =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  let rows = exp ppf in
  Format.pp_print_flush ppf ();
  (Buffer.contents buf, rows)

let run_at ~domains exp =
  Wr_pool.set_default_domains domains;
  Fun.protect ~finally:(fun () -> Wr_pool.set_default_domains 1) (fun () -> capture exp)

let test_exp_detect_domains () =
  let out4, rows4 = run_at ~domains:4 (Experiments.exp_detect ~quick:true) in
  let out1, rows1 = run_at ~domains:1 (Experiments.exp_detect ~quick:true) in
  check Alcotest.int "same claim count" (List.length rows1) (List.length rows4);
  List.iter2
    (fun (r1 : Experiments.row) (r4 : Experiments.row) ->
      check Alcotest.string "claim id" r1.x_id r4.x_id;
      check Alcotest.string "measured value" r1.x_measured r4.x_measured;
      check cb "verdict" r1.x_ok r4.x_ok)
    rows1 rows4;
  check Alcotest.string "byte-identical output" out1 out4;
  check cb "all claims hold" true (List.for_all (fun (r : Experiments.row) -> r.x_ok) rows1)

let () =
  Alcotest.run "detect"
    [
      ( "campaign",
        [ Alcotest.test_case "exp-detect identical at 1 and 4 domains" `Quick
            test_exp_detect_domains ] );
      ( "offline-scan",
        [
          qtest prop_scan_matches_outcome;
          qtest prop_no_detection_on_acyclic;
          qtest prop_scan_deterministic;
        ] );
      ( "online",
        [
          Alcotest.test_case "tornado: targeted recovery beats the watchdog" `Quick
            test_tornado_targeted_recovery;
          Alcotest.test_case "tornado: detection within the bound" `Quick
            test_tornado_detection_within_bound;
          Alcotest.test_case "victim event ordering" `Quick test_victim_event_ordering;
          Alcotest.test_case "post-mortem sections" `Quick test_postmortem_sections;
        ] );
      ( "differential",
        [
          Alcotest.test_case "seeded fault corpus: delivery superset" `Quick
            test_fault_corpus_superset;
        ] );
      ("lint", [ Alcotest.test_case "detect-config lint codes" `Quick test_detect_config_lint ]);
    ]
