(* Unit tests for the flit-level wormhole engine: timing, atomic buffer
   allocation, arbitration, adversarial holds, deadlock detection. *)

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

let line3 () =
  (* a -> b -> c -> d directed line for timing tests *)
  let t = Topology.create () in
  let a = Topology.add_node t "a" in
  let b = Topology.add_node t "b" in
  let c = Topology.add_node t "c" in
  let d = Topology.add_node t "d" in
  let ab = Topology.add_channel t a b in
  let bc = Topology.add_channel t b c in
  let cd = Topology.add_channel t c d in
  let rt =
    Routing.create ~name:"line" t (fun input _dest ->
        match input with
        | Routing.Inject n -> if n = a then Some ab else None
        | Routing.From ch -> if ch = ab then Some bc else if ch = bc then Some cd else None)
  in
  (rt, a, d, ab, bc, cd)

let delivered_at = function
  | Engine.All_delivered { messages = [ r ]; _ } -> (
    match r.Engine.r_delivered_at with Some t -> t | None -> Alcotest.fail "no delivery time")
  | _ -> Alcotest.fail "expected single delivery"

let test_solo_latency () =
  (* header: cycle 0 enters ab, 1 bc, 2 cd, consumed at 3; flit f of L
     follows; tail consumed at 3 + L - 1.  L=1 -> 3, L=4 -> 6. *)
  let rt, a, d, _, _, _ = line3 () in
  let t1 = delivered_at (Engine.run rt [ Schedule.message ~length:1 "m" a d ]) in
  check ci "L=1" 3 t1;
  let t4 = delivered_at (Engine.run rt [ Schedule.message ~length:4 "m" a d ]) in
  check ci "L=4" 6 t4;
  (* distance-insensitivity of wormhole: latency = hops + length - 1 + 1 *)
  let t10 = delivered_at (Engine.run rt [ Schedule.message ~length:10 "m" a d ]) in
  check ci "L=10" 12 t10

let test_inject_time_respected () =
  let rt, a, d, _, _, _ = line3 () in
  let t = delivered_at (Engine.run rt [ Schedule.message ~length:1 ~at:5 "m" a d ]) in
  check ci "shifted by 5" 8 t

let test_larger_buffers_do_not_slow () =
  let rt, a, d, _, _, _ = line3 () in
  let config = { Engine.default_config with buffer_capacity = 4 } in
  let t = delivered_at (Engine.run ~config rt [ Schedule.message ~length:4 "m" a d ]) in
  check ci "same latency" 6 t

let test_atomic_allocation_serializes () =
  (* two messages over the same line: the second header may only enter ab
     after the first message's tail has left it *)
  let rt, a, d, _, _, _ = line3 () in
  let out =
    Engine.run rt
      [ Schedule.message ~length:3 "first" a d; Schedule.message ~length:3 "second" a d ]
  in
  match out with
  | Engine.All_delivered { messages; _ } ->
    let find l =
      List.find (fun (r : Engine.message_result) -> r.r_label = l) messages
    in
    let first = find "first" and second = find "second" in
    (* first: header in ab at 0; flits 3: tail enters ab at 2, leaves at 3;
       ab released end of 3; second injected at 4 *)
    check (Alcotest.option ci) "first injected" (Some 0) first.r_injected_at;
    check (Alcotest.option ci) "second waits for release" (Some 4) second.r_injected_at;
    check (Alcotest.option ci) "first delivered" (Some 5) first.r_delivered_at;
    check (Alcotest.option ci) "second delivered" (Some 9) second.r_delivered_at
  | _ -> Alcotest.fail "expected delivery"

let test_fifo_arbitration_fairness () =
  (* three messages requesting the same first channel at the same cycle are
     served in schedule order under FIFO; all deliver *)
  let rt, a, d, _, _, _ = line3 () in
  let sched = List.init 3 (fun i -> Schedule.message ~length:2 (Printf.sprintf "m%d" i) a d) in
  match Engine.run rt sched with
  | Engine.All_delivered { messages; _ } ->
    let times =
      List.map
        (fun (r : Engine.message_result) -> Option.get r.r_injected_at)
        messages
    in
    check (Alcotest.list ci) "served in order" [ 0; 3; 6 ] times
  | _ -> Alcotest.fail "expected delivery"

let test_priority_arbitration () =
  (* priority order reverses who wins the simultaneous request *)
  let rt, a, d, _, _, _ = line3 () in
  let sched = [ Schedule.message ~length:2 "x" a d; Schedule.message ~length:2 "y" a d ] in
  let config = { Engine.default_config with arbitration = Engine.Priority [ "y"; "x" ] } in
  match Engine.run ~config rt sched with
  | Engine.All_delivered { messages; _ } ->
    let find l = List.find (fun (r : Engine.message_result) -> r.r_label = l) messages in
    check cb "y first" true
      (Option.get (find "y").r_injected_at < Option.get (find "x").r_injected_at)
  | _ -> Alcotest.fail "expected delivery"

let test_priority_does_not_starve_waiters () =
  (* a message already waiting beats a higher-priority later request
     (assumption 5: starvation-free service) *)
  let rt, a, d, _, _, _ = line3 () in
  let sched =
    [ Schedule.message ~length:6 "hog" a d;
      Schedule.message ~length:1 ~at:1 "early" a d;
      Schedule.message ~length:1 ~at:5 "late" a d ]
  in
  let config = { Engine.default_config with arbitration = Engine.Priority [ "late"; "early"; "hog" ] } in
  match Engine.run ~config rt sched with
  | Engine.All_delivered { messages; _ } ->
    let find l = List.find (fun (r : Engine.message_result) -> r.r_label = l) messages in
    check cb "early before late" true
      (Option.get (find "early").r_injected_at < Option.get (find "late").r_injected_at)
  | _ -> Alcotest.fail "expected delivery"

let test_hold_delays_exactly () =
  let rt, a, d, _, bc, _ = line3 () in
  let base = delivered_at (Engine.run rt [ Schedule.message ~length:2 "m" a d ]) in
  List.iter
    (fun h ->
      let held =
        delivered_at
          (Engine.run rt [ Schedule.message ~length:2 ~holds:[ (bc, h) ] "m" a d ])
      in
      check ci (Printf.sprintf "hold %d" h) (base + h) held)
    [ 1; 2; 5 ]

let test_hold_expiry_not_deadlock () =
  (* regression: a hold expiring in an otherwise quiet cycle must not be
     misreported as a permanent block *)
  let rt, a, d, ab, _, _ = line3 () in
  match Engine.run rt [ Schedule.message ~length:1 ~holds:[ (ab, 10) ] "m" a d ] with
  | Engine.All_delivered { finished_at; _ } -> check ci "delivered late" 13 finished_at
  | o -> Alcotest.failf "unexpected outcome: %s" (Format.asprintf "%a" (Engine.pp_outcome (Routing.topology rt)) o)

let ring4 () =
  let coords = Builders.ring ~unidirectional:true 4 in
  (Ring_routing.clockwise coords, coords)

let test_ring_deadlock_detected () =
  let rt, _ = ring4 () in
  let sched =
    List.init 4 (fun i -> Schedule.message ~length:2 (Printf.sprintf "m%d" i) i ((i + 2) mod 4))
  in
  match Engine.run rt sched with
  | Engine.Deadlock d ->
    check ci "four blocked" 4 (List.length d.Engine.d_blocked);
    check ci "wait cycle covers all" 4 (List.length d.Engine.d_wait_cycle);
    (* every blocked message's wanted channel is held by another message *)
    List.iter
      (fun (b : Engine.blocked_info) ->
        match b.b_holder with
        | Some h -> check cb "holder is another message" true (h <> b.b_label)
        | None -> Alcotest.fail "blocked on a free channel")
      d.Engine.d_blocked;
    (* occupancy is consistent: each ring channel held by exactly one *)
    check ci "four held channels" 4 (List.length d.Engine.d_occupancy)
  | o ->
    Alcotest.failf "expected deadlock, got %s"
      (Format.asprintf "%a" (Engine.pp_outcome (Routing.topology rt)) o)

let test_ring_staggered_no_deadlock () =
  (* the same population, injected far enough apart to drain, delivers *)
  let rt, _ = ring4 () in
  let sched =
    List.init 4 (fun i ->
        Schedule.message ~length:2 ~at:(10 * i) (Printf.sprintf "m%d" i) i ((i + 2) mod 4))
  in
  match Engine.run rt sched with
  | Engine.All_delivered _ -> ()
  | o ->
    Alcotest.failf "expected delivery, got %s"
      (Format.asprintf "%a" (Engine.pp_outcome (Routing.topology rt)) o)

let test_partial_traffic_then_quiesce () =
  (* messages that do not interact still finish independently *)
  let rt, _ = ring4 () in
  let sched = [ Schedule.message ~length:3 "solo" 0 1; Schedule.message ~length:3 ~at:20 "later" 2 3 ] in
  match Engine.run rt sched with
  | Engine.All_delivered { finished_at; _ } -> check cb "finishes after 20" true (finished_at >= 20)
  | _ -> Alcotest.fail "expected delivery"

let test_validate_rejected () =
  let rt, _ = ring4 () in
  let bad label = Alcotest.check_raises label (Invalid_argument ("Engine.run: " ^ label)) in
  bad "duplicate message labels" (fun () ->
      ignore (Engine.run rt [ Schedule.message "m" 0 1; Schedule.message "m" 1 2 ]));
  Alcotest.check_raises "src=dst" (Invalid_argument "Engine.run: m: source equals destination")
    (fun () -> ignore (Engine.run rt [ Schedule.message "m" 0 0 ]));
  Alcotest.check_raises "bad length" (Invalid_argument "Engine.run: m: length < 1") (fun () ->
      ignore (Engine.run rt [ Schedule.message ~length:0 "m" 0 1 ]))

let test_cutoff () =
  let rt, _ = ring4 () in
  let config = { Engine.default_config with max_cycles = 2 } in
  match Engine.run ~config rt [ Schedule.message ~length:50 "m" 0 3 ] with
  | Engine.Cutoff { at; _ } -> check ci "cutoff at limit" 2 at
  | _ -> Alcotest.fail "expected cutoff"

let test_determinism () =
  let rt, _ = ring4 () in
  let sched =
    List.init 4 (fun i -> Schedule.message ~length:3 (Printf.sprintf "m%d" i) i ((i + 2) mod 4))
  in
  let a = Engine.run rt sched and b = Engine.run rt sched in
  check cb "identical outcomes" true (a = b)

let test_buffer_capacity_compresses () =
  (* with capacity 2 a 4-flit message occupies half as many channels when
     blocked; verify via deadlock occupancy on the ring *)
  let rt, _ = ring4 () in
  let sched =
    List.init 4 (fun i -> Schedule.message ~length:4 (Printf.sprintf "m%d" i) i ((i + 2) mod 4))
  in
  let config = { Engine.default_config with buffer_capacity = 4 } in
  match Engine.run ~config rt sched with
  | Engine.Deadlock d ->
    List.iter (fun (_, _, n) -> check cb "compressed" true (n <= 4)) d.Engine.d_occupancy;
    (* at least one queue holds more than one flit *)
    check cb "some multi-flit queue" true
      (List.exists (fun (_, _, n) -> n > 1) d.Engine.d_occupancy)
  | _ -> Alcotest.fail "expected deadlock"

(* ---- switching disciplines ---- *)

let test_saf_slower_than_wormhole () =
  let rt, a, d, _, _, _ = line3 () in
  let saf =
    { Engine.default_config with buffer_capacity = 4; discipline = Engine.Store_and_forward }
  in
  let t_saf = delivered_at (Engine.run ~config:saf rt [ Schedule.message ~length:4 "m" a d ]) in
  let t_wh = delivered_at (Engine.run rt [ Schedule.message ~length:4 "m" a d ]) in
  check cb "SAF strictly slower" true (t_saf > t_wh);
  (* SAF latency grows with hops x length, wormhole with hops + length *)
  check ci "SAF latency" 11 t_saf

let test_saf_requires_capacity () =
  let rt, a, d, _, _, _ = line3 () in
  let saf =
    { Engine.default_config with buffer_capacity = 2; discipline = Engine.Store_and_forward }
  in
  Alcotest.check_raises "capacity check"
    (Invalid_argument "Engine.run: store-and-forward needs buffer_capacity >= message length")
    (fun () -> ignore (Engine.run ~config:saf rt [ Schedule.message ~length:4 "m" a d ]))

let test_vct_releases_upstream () =
  (* under cut-through buffering a blocked message compresses into one
     queue, so a second message can reuse the upstream channels *)
  let rt, a, d, ab, _, _ = line3 () in
  let vct = { Engine.default_config with buffer_capacity = 8 } in
  let sched =
    [
      Schedule.message ~length:4 ~holds:[ (ab, 0) ] "first" a d;
      Schedule.message ~length:4 "second" a d;
    ]
  in
  match (Engine.run ~config:vct rt sched, Engine.run rt sched) with
  | Engine.All_delivered { finished_at = t_vct; _ }, Engine.All_delivered { finished_at = t_wh; _ }
    ->
    (* with deep buffers the second message streams in right behind the
       first and the whole run finishes no later than under wormhole *)
    check cb "vct no slower" true (t_vct <= t_wh)
  | _ -> Alcotest.fail "expected delivery"

let test_vct_ring_still_deadlocks () =
  let rt, _ = ring4 () in
  let sched =
    List.init 4 (fun i -> Schedule.message ~length:3 (Printf.sprintf "m%d" i) i ((i + 2) mod 4))
  in
  let vct = { Engine.default_config with buffer_capacity = 8 } in
  check cb "buffer cycle deadlock" true (Engine.is_deadlock (Engine.run ~config:vct rt sched))

let test_saf_ring_deadlock () =
  (* store-and-forward is no safer than wormhole on the cyclic substrate:
     each message fully buffers in its first ring channel, then every header
     wants the channel the next message occupies -- a closed buffer cycle *)
  let rt, _ = ring4 () in
  let sched =
    List.init 4 (fun i -> Schedule.message ~length:2 (Printf.sprintf "m%d" i) i ((i + 2) mod 4))
  in
  let saf =
    { Engine.default_config with buffer_capacity = 2; discipline = Engine.Store_and_forward }
  in
  match Engine.run ~config:saf rt sched with
  | Engine.Deadlock d ->
    check ci "four blocked" 4 (List.length d.Engine.d_blocked);
    check ci "wait cycle covers all" 4 (List.length d.Engine.d_wait_cycle);
    List.iter
      (fun (b : Engine.blocked_info) ->
        match b.b_holder with
        | Some h -> check cb "holder is another message" true (h <> b.b_label)
        | None -> Alcotest.fail "blocked on a free channel")
      d.Engine.d_blocked
  | o ->
    Alcotest.failf "expected SAF deadlock, got %s"
      (Format.asprintf "%a" (Engine.pp_outcome (Routing.topology rt)) o)

(* a unidirectional 4-ring r0..r3 plus a feeder node s injecting into r1.
   Four length-2 messages contend; whoever wins channel r1->r2 decides the
   run: the ring message "a" winning drains the network, the feeder message
   "e" winning closes a four-message wait cycle. *)
let ring_with_feeder () =
  let t = Topology.create () in
  let r = Array.init 4 (fun i -> Topology.add_node t (Printf.sprintf "r%d" i)) in
  let s = Topology.add_node t "s" in
  let c = Array.init 4 (fun i -> Topology.add_channel t r.(i) r.((i + 1) mod 4)) in
  let cs = Topology.add_channel t s r.(1) in
  let rt =
    Routing.create ~name:"ring+feeder" t (fun input dest ->
        let step node = if node = dest then None else Some c.(node) in
        match input with
        | Routing.Inject n -> if n = s then Some cs else step n
        | Routing.From ch -> step (Topology.dst t ch))
  in
  (rt, s)

let test_priority_dependent_deadlock () =
  let rt, s = ring_with_feeder () in
  let sched =
    [
      Schedule.message ~length:2 "a" 0 2;
      Schedule.message ~length:2 "c" 2 0;
      Schedule.message ~length:2 "d" 3 1;
      Schedule.message ~length:2 "e" s 3;
    ]
  in
  (* FIFO breaks the r1->r2 tie for "a" (schedule order) and everything
     drains behind it *)
  (match Engine.run rt sched with
  | Engine.All_delivered _ -> ()
  | o ->
    Alcotest.failf "fifo should deliver, got %s"
      (Format.asprintf "%a" (Engine.pp_outcome (Routing.topology rt)) o));
  (* promoting the feeder message realizes the adversarial acquisition
     order: e holds r1->r2 and waits on c, c on d, d on a, a on e *)
  let config =
    { Engine.default_config with arbitration = Engine.Priority [ "e"; "a"; "c"; "d" ] }
  in
  match Engine.run ~config rt sched with
  | Engine.Deadlock d ->
    check ci "four blocked" 4 (List.length d.Engine.d_blocked);
    check ci "wait cycle covers all" 4 (List.length d.Engine.d_wait_cycle)
  | o ->
    Alcotest.failf "priority order should deadlock, got %s"
      (Format.asprintf "%a" (Engine.pp_outcome (Routing.topology rt)) o)

let test_schedule_pp_and_validate () =
  let rt, coords = ring4 () in
  let sched = [ Schedule.message ~length:2 ~holds:[ (0, 1) ] "m" 0 2 ] in
  (match Schedule.validate rt sched with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let s = Format.asprintf "%a" (Schedule.pp coords.Builders.topo) sched in
  check cb "pp mentions hold" true (String.length s > 10)

let () =
  Alcotest.run "sim"
    [
      ( "timing",
        [
          Alcotest.test_case "solo latency" `Quick test_solo_latency;
          Alcotest.test_case "inject time" `Quick test_inject_time_respected;
          Alcotest.test_case "buffers don't slow" `Quick test_larger_buffers_do_not_slow;
        ] );
      ( "allocation",
        [
          Alcotest.test_case "atomic allocation serializes" `Quick
            test_atomic_allocation_serializes;
          Alcotest.test_case "buffer capacity compresses" `Quick test_buffer_capacity_compresses;
        ] );
      ( "arbitration",
        [
          Alcotest.test_case "fifo fairness" `Quick test_fifo_arbitration_fairness;
          Alcotest.test_case "priority override" `Quick test_priority_arbitration;
          Alcotest.test_case "no starvation" `Quick test_priority_does_not_starve_waiters;
          Alcotest.test_case "priority-dependent deadlock" `Quick
            test_priority_dependent_deadlock;
        ] );
      ( "holds",
        [
          Alcotest.test_case "delays exactly" `Quick test_hold_delays_exactly;
          Alcotest.test_case "expiry is not deadlock" `Quick test_hold_expiry_not_deadlock;
        ] );
      ( "deadlock",
        [
          Alcotest.test_case "ring deadlock detected" `Quick test_ring_deadlock_detected;
          Alcotest.test_case "staggered traffic passes" `Quick test_ring_staggered_no_deadlock;
          Alcotest.test_case "quiesce with future work" `Quick test_partial_traffic_then_quiesce;
        ] );
      ( "switching",
        [
          Alcotest.test_case "SAF slower" `Quick test_saf_slower_than_wormhole;
          Alcotest.test_case "SAF capacity check" `Quick test_saf_requires_capacity;
          Alcotest.test_case "VCT releases upstream" `Quick test_vct_releases_upstream;
          Alcotest.test_case "VCT ring deadlock" `Quick test_vct_ring_still_deadlocks;
          Alcotest.test_case "SAF ring deadlock" `Quick test_saf_ring_deadlock;
        ] );
      ( "api",
        [
          Alcotest.test_case "validation errors" `Quick test_validate_rejected;
          Alcotest.test_case "cutoff" `Quick test_cutoff;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "schedule pp/validate" `Quick test_schedule_pp_and_validate;
        ] );
    ]
