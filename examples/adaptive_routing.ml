(* Adaptive routing: the paper's Section-7 outlook, made concrete.

   Unrestricted fully-adaptive routing has a cyclic (adaptive) channel
   dependency graph; Duato's methodology restores deadlock freedom with an
   escape class whose extended dependency graph is acyclic.  The adaptive
   engine shows a header routing around a blocked worm -- the payoff
   adaptivity buys over the oblivious algorithms of the main development.

   Run with: dune exec examples/adaptive_routing.exe *)

let () =
  let mesh1 = Builders.mesh [ 4; 4 ] in
  let mesh2 = Builders.mesh ~vcs:2 [ 4; 4 ] in

  Format.printf "=== Fully adaptive minimal routing (no restrictions) ===@.";
  let fully = Adaptive.fully_adaptive_minimal mesh1 in
  (match Adaptive.validate fully with
  | Ok () -> Format.printf "option function valid (delivers along every choice)@."
  | Error e -> failwith e);
  let edges = Adaptive.cdg_edges fully in
  let nchan = Topology.num_channels mesh1.topo in
  let succs = Array.make nchan [] in
  List.iter (fun (a, b) -> succs.(a) <- b :: succs.(a)) edges;
  Format.printf "adaptive CDG: %d dependencies, cyclic: %b -- not certifiable by acyclicity@."
    (List.length edges)
    (Scc.has_cycle ~n:nchan ~succ:(fun c -> succs.(c)));

  Format.printf "@.=== Duato's escape-channel design ===@.";
  let duato = Adaptive.duato_mesh mesh2 in
  let escape = Adaptive.escape_of_duato_mesh mesh2 in
  Format.printf "%a@." Duato.pp (Duato.check duato ~escape);

  Format.printf "@.=== Routing around a blocked worm ===@.";
  let n00 = mesh1.node_at [| 0; 0 |]
  and n20 = mesh1.node_at [| 2; 0 |]
  and n22 = mesh1.node_at [| 2; 2 |] in
  let sched =
    [
      Schedule.message ~length:40 "hog" n00 n20;
      Schedule.message ~length:2 ~at:2 "probe" n00 n22;
    ]
  in
  (* oblivious XY: the probe must wait for the 40-flit hog to drain *)
  let xy = Dimension_order.mesh mesh1 in
  (match Engine.run xy sched with
  | Engine.All_delivered { messages; _ } ->
    List.iter
      (fun (r : Engine.message_result) ->
        Format.printf "  XY      : %s delivered at %s@." r.r_label
          (match r.r_delivered_at with Some t -> string_of_int t | None -> "-"))
      messages
  | o -> Format.printf "%a@." (Engine.pp_outcome mesh1.topo) o);
  (* adaptive: the probe detours over the Y channel immediately *)
  (match Adaptive_engine.run fully sched with
  | Adaptive_engine.All_delivered { messages; _ } ->
    List.iter
      (fun (r : Engine.message_result) ->
        Format.printf "  adaptive: %s delivered at %s@." r.r_label
          (match r.r_delivered_at with Some t -> string_of_int t | None -> "-"))
      messages
  | o -> Format.printf "%a@." (Engine.pp_outcome mesh1.topo) o);

  Format.printf "@.=== A small wormhole timeline (oblivious XY) ===@.";
  let get, probe = Trace.collector () in
  let tiny =
    [
      Schedule.message ~length:3 "a" n00 n22;
      Schedule.message ~length:3 ~at:1 "b" (mesh1.node_at [| 1; 0 |]) (mesh1.node_at [| 1; 3 |]);
    ]
  in
  ignore (Engine.run ~probe xy tiny);
  print_string (Trace.render mesh1.topo (get ()))
