(* Bechamel benchmarks: one test per reproduced artifact family, so the cost
   of every machine in the pipeline is tracked.

   - cdg/*        building dependency graphs and enumerating cycles
                  (the static machinery behind Figures 1-3)
   - classify/*   the Theorem-2..5 classifiers
   - sim/*        the flit-level engine on substrate workloads (EXP-S1/S2)
   - search/*     the adversarial schedule searches (EXP-F1, EXP-T4, EXP-T5)
   - sweep/*      the same searches through the Wr_pool parallel sweep,
                  sequential vs parallel
   - family/*     the Section-6 minimum-delay probe (EXP-G)

   Run with: dune exec bench/main.exe
   Options:
     --quick               smoke subset with a small measurement quota (CI)
     --json                also write BENCH_<date>.json with ns/run per case
     --campaign-json FILE  splice a wormhole-campaign/1 JSON (from
                           run_experiments --json) into the bench JSON;
                           repeatable *)

module Sim_measure = Measure (* keep wr_workload's Measure reachable under open Bechamel *)

open Bechamel
open Toolkit

(* ---- prebuilt inputs (construction cost is not what we measure) ---- *)

let mesh8 = Builders.mesh [ 8; 8 ]
let mesh8_rt = Dimension_order.mesh mesh8
let torus5 = Builders.torus [ 5; 5 ]
let torus5_rt = Dimension_order.torus torus5
let fig1 = Paper_nets.figure1 ()
let fig1_rt = Cd_algorithm.of_net fig1
let fig1_cdg = Cdg.build fig1_rt
let fig2 = Paper_nets.figure2 ()
let fig2_rt = Cd_algorithm.of_net fig2
let fig3c = Paper_nets.figure3 `C
let fig3c_rt = Cd_algorithm.of_net fig3c
let fig3c_cdg = Cdg.build fig3c_rt

let mesh_schedule =
  let rng = Rng.create 11 in
  let pattern = Traffic.uniform rng mesh8 in
  Traffic.bernoulli_schedule rng pattern ~coords:mesh8 ~rate:0.02 ~length:4 ~horizon:300

let tornado_schedule =
  Traffic.permutation_schedule (Traffic.tornado torus5) ~coords:torus5 ~length:8

(* Trimmed Figure-1 search: injection orders under the order-following
   adversary -- a deterministic, meaningful slice of EXP-F1. *)
let fig1_quick_space =
  let templates = List.map (fun i -> Explorer.intent_template ~extra:[ -1 ] fig1 i) fig1.intents in
  {
    (Explorer.default_space templates) with
    gaps = [ 0 ];
    buffers = [ 1 ];
    priorities = Explorer.Follow_order;
  }

let fig2_space =
  let templates = List.map (fun i -> Explorer.intent_template fig2 i) fig2.intents in
  Explorer.default_space templates

let entries =
  [
    ("cdg/build-mesh8x8", Test.make ~name:"cdg/build-mesh8x8" (Staged.stage (fun () -> Cdg.build mesh8_rt)));
    ("cdg/build-figure1", Test.make ~name:"cdg/build-figure1" (Staged.stage (fun () -> Cdg.build fig1_rt)));
    ( "cdg/cycles-figure1",
      Test.make ~name:"cdg/cycles-figure1"
        (Staged.stage (fun () -> Cdg.elementary_cycles fig1_cdg)) );
    ( "cdg/cycles-torus5x5",
      Test.make ~name:"cdg/cycles-torus5x5"
        (Staged.stage
           (let cdg = Cdg.build torus5_rt in
            fun () -> Cdg.elementary_cycles cdg)) );
    ( "classify/figure1-cycle",
      Test.make ~name:"classify/figure1-cycle"
        (Staged.stage
           (let cycle = List.hd (Cdg.elementary_cycles fig1_cdg) in
            fun () -> Cycle_analysis.classify fig1_cdg cycle)) );
    ( "classify/theorem5-figure3c",
      Test.make ~name:"classify/theorem5-figure3c"
        (Staged.stage
           (let cycle = List.hd (Cdg.elementary_cycles fig3c_cdg) in
            fun () -> Cycle_analysis.classify fig3c_cdg cycle)) );
    ( "properties/coherent-mesh8x8",
      Test.make ~name:"properties/coherent-mesh8x8"
        (Staged.stage (fun () -> Properties.coherent mesh8_rt)) );
    ( "sim/mesh8x8-uniform-300c",
      Test.make ~name:"sim/mesh8x8-uniform-300c"
        (Staged.stage (fun () -> Sim_measure.run mesh8_rt mesh_schedule)) );
    ( "sim/torus5x5-tornado-deadlock",
      Test.make ~name:"sim/torus5x5-tornado-deadlock"
        (Staged.stage (fun () -> Engine.run torus5_rt tornado_schedule)) );
    (* the raw engine with no probe and no sanitizer: the PR-3 hot path
       (precomputed hold arrays, indexed wait_since, stamped request
       scratch) is exactly what this measures *)
    ( "sim/engine-hotpath",
      Test.make ~name:"sim/engine-hotpath"
        (Staged.stage (fun () -> Engine.run mesh8_rt mesh_schedule)) );
    ( "search/figure1-order-sweep",
      Test.make ~name:"search/figure1-order-sweep"
        (Staged.stage (fun () -> Explorer.explore fig1_rt fig1_quick_space)) );
    ( "search/figure2-witness",
      Test.make ~name:"search/figure2-witness"
        (Staged.stage (fun () -> Explorer.explore fig2_rt fig2_space)) );
    (* the same sweep through the Wr_pool, pinned sequential vs parallel;
       with one domain the two are the identical code path, so any gap on a
       multicore host is the pool's win (or overhead) *)
    ( "sweep/figure2-seq",
      Test.make ~name:"sweep/figure2-seq"
        (Staged.stage (fun () -> Explorer.explore ~domains:1 fig2_rt fig2_space)) );
    ( "sweep/figure2-parallel",
      Test.make ~name:"sweep/figure2-parallel"
        (Staged.stage
           (let d = Wr_pool.default_domains () in
            fun () -> Explorer.explore ~domains:d fig2_rt fig2_space)) );
    ( "family/min-delay-p1",
      Test.make ~name:"family/min-delay-p1"
        (Staged.stage
           (let net = Paper_nets.family 1 in
            fun () -> Min_delay.search ~max_h:2 net)) );
    ( "classify/message-flow-figure1",
      Test.make ~name:"classify/message-flow-figure1"
        (Staged.stage (fun () -> Message_flow.analyze fig1_rt)) );
    ( "classify/duato-mesh4x4",
      Test.make ~name:"classify/duato-mesh4x4"
        (Staged.stage
           (let mesh2 = Builders.mesh ~vcs:2 [ 4; 4 ] in
            let ad = Adaptive.duato_mesh mesh2 in
            let escape = Adaptive.escape_of_duato_mesh mesh2 in
            fun () -> Duato.check ad ~escape)) );
    ( "sim/adaptive-duato-stress",
      Test.make ~name:"sim/adaptive-duato-stress"
        (Staged.stage
           (let mesh2 = Builders.mesh ~vcs:2 [ 4; 4 ] in
            let ad = Adaptive.duato_mesh mesh2 in
            let rng = Rng.create 13 in
            let pattern = Traffic.uniform rng mesh2 in
            let sched =
              Traffic.bernoulli_schedule rng pattern ~coords:mesh2 ~rate:0.05 ~length:4
                ~horizon:150
            in
            fun () -> Adaptive_engine.run ad sched)) );
    ( "search/model-check-figure1",
      Test.make ~name:"search/model-check-figure1"
        (Staged.stage
           (let net = Paper_nets.figure1 () in
            fun () -> Model_checker.check_net ~extra:[ 0 ] net)) );
    (* ablation: the arbitration-adversary dimension of the search *)
    ( "search/figure2-fifo-only",
      Test.make ~name:"search/figure2-fifo-only"
        (Staged.stage
           (let templates =
              List.map (fun i -> Explorer.intent_template fig2 i) fig2.intents
            in
            let sp = { (Explorer.default_space templates) with priorities = Explorer.Fifo_only } in
            fun () -> Explorer.explore fig2_rt sp)) );
  ]

(* fast cases that still cover the PR-3 surfaces: CDG machinery, the engine
   hot path, and the pooled sweep both sequential and parallel *)
let smoke =
  [
    "cdg/build-figure1";
    "cdg/cycles-figure1";
    "sim/engine-hotpath";
    "sim/torus5x5-tornado-deadlock";
    "sweep/figure2-seq";
    "sweep/figure2-parallel";
  ]

let benchmark ~quick =
  let chosen =
    if quick then List.filter (fun (n, _) -> List.mem n smoke) entries else entries
  in
  let tests = Test.make_grouped ~name:"wormhole" (List.map snd chosen) in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| "run" |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    if quick then Benchmark.cfg ~limit:25 ~quota:(Time.second 0.1) ~kde:None ()
    else Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = List.map (fun instance -> Analyze.all ols instance raw) instances in
  Analyze.merge ols instances results

let git_commit () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "unknown" in
    ignore (Unix.close_process_in ic);
    line
  with _ -> "unknown"

let today () =
  let tm = Unix.localtime (Unix.time ()) in
  Printf.sprintf "%04d-%02d-%02d" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1) tm.Unix.tm_mday

let write_json ~quick ~campaigns rows =
  let date = today () in
  let path = Printf.sprintf "BENCH_%s.json" date in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema\": \"wormhole-bench/1\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"date\": %S,\n" date);
  Buffer.add_string buf (Printf.sprintf "  \"commit\": %S,\n" (git_commit ()));
  Buffer.add_string buf (Printf.sprintf "  \"domains\": %d,\n" (Wr_pool.default_domains ()));
  Buffer.add_string buf
    (Printf.sprintf "  \"host_recommended_domains\": %d,\n" (Domain.recommended_domain_count ()));
  Buffer.add_string buf (Printf.sprintf "  \"quick\": %b,\n" quick);
  Buffer.add_string buf "  \"benchmarks\": {\n";
  let n = List.length rows in
  List.iteri
    (fun i (name, ns) ->
      Buffer.add_string buf
        (Printf.sprintf "    %S: %s%s\n" name
           (if Float.is_nan ns then "null" else Printf.sprintf "%.1f" ns)
           (if i = n - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  },\n";
  Buffer.add_string buf "  \"campaigns\": [\n";
  let nc = List.length campaigns in
  List.iteri
    (fun i body ->
      (* splice the wormhole-campaign/1 document verbatim, reindented *)
      String.split_on_char '\n' (String.trim body)
      |> List.iter (fun line -> Buffer.add_string buf (Printf.sprintf "    %s\n" line));
      if i <> nc - 1 then Buffer.add_string buf "    ,\n")
    campaigns;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  path

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let () =
  let quick = ref false and json = ref false and campaigns = ref [] in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
      quick := true;
      parse rest
    | "--json" :: rest ->
      json := true;
      parse rest
    | "--campaign-json" :: path :: rest ->
      campaigns := read_file path :: !campaigns;
      parse rest
    | arg :: _ ->
      Printf.eprintf
        "usage: bench [--quick] [--json] [--campaign-json FILE]... (unknown arg %s)\n" arg;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let results = benchmark ~quick:!quick in
  let table = Table.create ~aligns:[ Table.Left; Table.Right ] [ "benchmark"; "time/run" ] in
  let rows = ref [] in
  Hashtbl.iter
    (fun _metric tbl ->
      Hashtbl.iter
        (fun name ols ->
          let est =
            match Analyze.OLS.estimates ols with
            | Some (e :: _) -> e
            | _ -> nan
          in
          rows := (name, est) :: !rows)
        tbl)
    results;
  let rows = List.sort compare !rows in
  let human ns =
    if Float.is_nan ns then "n/a"
    else if ns < 1e3 then Printf.sprintf "%.0f ns" ns
    else if ns < 1e6 then Printf.sprintf "%.2f us" (ns /. 1e3)
    else if ns < 1e9 then Printf.sprintf "%.2f ms" (ns /. 1e6)
    else Printf.sprintf "%.2f s" (ns /. 1e9)
  in
  List.iter (fun (name, est) -> Table.add_row table [ name; human est ]) rows;
  Table.print table;
  if !json then begin
    let path = write_json ~quick:!quick ~campaigns:(List.rev !campaigns) rows in
    Printf.printf "\nbench JSON written to %s\n" path
  end
