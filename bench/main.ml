(* Bechamel benchmarks: one test per reproduced artifact family, so the cost
   of every machine in the pipeline is tracked.

   - cdg/*        building dependency graphs and enumerating cycles
                  (the static machinery behind Figures 1-3)
   - classify/*   the Theorem-2..5 classifiers
   - sim/*        the flit-level engine on substrate workloads (EXP-S1/S2)
   - search/*     the adversarial schedule searches (EXP-F1, EXP-T4, EXP-T5)
   - sweep/*      the same searches through the Wr_pool parallel sweep,
                  sequential vs parallel
   - family/*     the Section-6 minimum-delay probe (EXP-G)

   Run with: dune exec bench/main.exe
   Options:
     --quick               smoke subset with a small measurement quota (CI)
     --json                also write BENCH_<date>.json with ns/run per case
                           plus per-case work counters (one extra observed
                           execution of each case under a metrics sink) and
                           per-case GC allocation deltas (minor/major words
                           over one plain execution)
     --campaign-json FILE  splice a wormhole-campaign/1 JSON (from
                           run_experiments --json) into the bench JSON;
                           repeatable *)

module Sim_measure = Measure (* keep wr_workload's Measure reachable under open Bechamel *)

open Bechamel
open Toolkit

(* ---- prebuilt inputs (construction cost is not what we measure) ---- *)

let mesh8 = Builders.mesh [ 8; 8 ]
let mesh8_rt = Dimension_order.mesh mesh8
let torus5 = Builders.torus [ 5; 5 ]
let torus5_rt = Dimension_order.torus torus5
let fig1 = Paper_nets.figure1 ()
let fig1_rt = Cd_algorithm.of_net fig1
let fig1_cdg = Cdg.build fig1_rt
let fig2 = Paper_nets.figure2 ()
let fig2_rt = Cd_algorithm.of_net fig2
let fig3c = Paper_nets.figure3 `C
let fig3c_rt = Cd_algorithm.of_net fig3c
let fig3c_cdg = Cdg.build fig3c_rt

let mesh_schedule =
  let rng = Rng.create 11 in
  let pattern = Traffic.uniform rng mesh8 in
  Traffic.bernoulli_schedule rng pattern ~coords:mesh8 ~rate:0.02 ~length:4 ~horizon:300

let tornado_schedule =
  Traffic.permutation_schedule (Traffic.tornado torus5) ~coords:torus5 ~length:8

(* Trimmed Figure-1 search: injection orders under the order-following
   adversary -- a deterministic, meaningful slice of EXP-F1. *)
let fig1_quick_space =
  let templates = List.map (fun i -> Explorer.intent_template ~extra:[ -1 ] fig1 i) fig1.intents in
  {
    (Explorer.default_space templates) with
    gaps = [ 0 ];
    buffers = [ 1 ];
    priorities = Explorer.Follow_order;
  }

let fig2_space =
  let templates = List.map (fun i -> Explorer.intent_template fig2 i) fig2.intents in
  Explorer.default_space templates

(* Each case keeps its raw thunk next to the bechamel test, so --json can
   re-run it exactly once under a metrics sink and report the work counters
   (runs, flits, acquisitions, pool claims...) per case. *)
type case = { c_name : string; c_test : Test.t; c_run : unit -> unit }

let case name f =
  { c_name = name; c_test = Test.make ~name (Staged.stage f); c_run = (fun () -> ignore (f ())) }

let entries =
  [
    case "cdg/build-mesh8x8" (fun () -> Cdg.build mesh8_rt);
    case "cdg/build-figure1" (fun () -> Cdg.build fig1_rt);
    case "cdg/cycles-figure1" (fun () -> Cdg.elementary_cycles fig1_cdg);
    case "cdg/cycles-torus5x5"
      (let cdg = Cdg.build torus5_rt in
       fun () -> Cdg.elementary_cycles cdg);
    case "classify/figure1-cycle"
      (let cycle = List.hd (Cdg.elementary_cycles fig1_cdg) in
       fun () -> Cycle_analysis.classify fig1_cdg cycle);
    case "classify/theorem5-figure3c"
      (let cycle = List.hd (Cdg.elementary_cycles fig3c_cdg) in
       fun () -> Cycle_analysis.classify fig3c_cdg cycle);
    case "properties/coherent-mesh8x8" (fun () -> Properties.coherent mesh8_rt);
    case "sim/mesh8x8-uniform-300c" (fun () -> Sim_measure.run mesh8_rt mesh_schedule);
    case "sim/torus5x5-tornado-deadlock" (fun () -> Engine.run torus5_rt tornado_schedule);
    (* the raw engine with no probe and no sanitizer: the PR-3 hot path
       (precomputed hold arrays, indexed wait_since, stamped request
       scratch) is exactly what this measures *)
    case "sim/engine-hotpath" (fun () -> Engine.run mesh8_rt mesh_schedule);
    (* the same hot-path workload under the coarser switching disciplines:
       the gap against engine-hotpath prices cut-through's whole-packet
       buffer provisioning and store-and-forward's buffered-packet gating
       (SAF needs whole-packet buffers -- the schedule's worms are 4 flits) *)
    case "sim/vct-hotpath"
      (let config = { Engine.default_config with discipline = Engine.Virtual_cut_through } in
       fun () -> Engine.run ~config mesh8_rt mesh_schedule);
    case "sim/saf-hotpath"
      (let config =
         { Engine.default_config with discipline = Engine.Store_and_forward; buffer_capacity = 4 }
       in
       fun () -> Engine.run ~config mesh8_rt mesh_schedule);
    (* the hot-path workload with a persistent stats accumulator threaded
       through every run: the gap against sim/mesh8x8-uniform-300c is the
       price of the per-cycle counter scans (owned/busy/wait/HoL walks) *)
    case "sim/stats-overhead"
      (let st = Obs_stats.create ~nchan:(Topology.num_channels mesh8.Builders.topo) in
       fun () -> Engine.run ~stats:st mesh8_rt mesh_schedule);
    (* the hot-path workload with online deadlock detection armed and no
       event bus installed: the gap against engine-hotpath is the price of
       building events for the detector's feed plus its per-cycle tick *)
    case "sim/detect-overhead"
      (let config =
         {
           Engine.default_config with
           recovery =
             Some { Engine.default_recovery with trigger = Engine.Detect Obs_detect.default_config };
         }
       in
       fun () -> Engine.run ~config mesh8_rt mesh_schedule);
    (* same workload through the kernel's adaptive mode with a singleton
       option function: the gap between this and engine-hotpath is the
       price of option lists + first-free claims over seniority awards *)
    case "sim/adaptive-hotpath"
      (let ad = Adaptive.of_oblivious mesh8_rt in
       fun () -> Adaptive_engine.run ad mesh_schedule);
    case "search/figure1-order-sweep" (fun () -> Explorer.explore fig1_rt fig1_quick_space);
    case "search/figure2-witness" (fun () -> Explorer.explore fig2_rt fig2_space);
    (* the same sweep through the Wr_pool, pinned sequential vs parallel;
       with one domain the two are the identical code path, so any gap on a
       multicore host is the pool's win (or overhead) *)
    case "sweep/figure2-seq" (fun () -> Explorer.explore ~domains:1 fig2_rt fig2_space);
    case "sweep/figure2-parallel"
      (let d = Wr_pool.default_domains () in
       fun () -> Explorer.explore ~domains:d fig2_rt fig2_space);
    case "family/min-delay-p1"
      (let net = Paper_nets.family 1 in
       fun () -> Min_delay.search ~max_h:2 net);
    case "classify/message-flow-figure1" (fun () -> Message_flow.analyze fig1_rt);
    case "classify/duato-mesh4x4"
      (let mesh2 = Builders.mesh ~vcs:2 [ 4; 4 ] in
       let ad = Adaptive.duato_mesh mesh2 in
       let escape = Adaptive.escape_of_duato_mesh mesh2 in
       fun () -> Duato.check ad ~escape);
    case "sim/adaptive-duato-stress"
      (let mesh2 = Builders.mesh ~vcs:2 [ 4; 4 ] in
       let ad = Adaptive.duato_mesh mesh2 in
       let rng = Rng.create 13 in
       let pattern = Traffic.uniform rng mesh2 in
       let sched =
         Traffic.bernoulli_schedule rng pattern ~coords:mesh2 ~rate:0.05 ~length:4 ~horizon:150
       in
       fun () -> Adaptive_engine.run ad sched);
    case "search/model-check-figure1"
      (let net = Paper_nets.figure1 () in
       fun () -> Model_checker.check_net ~extra:[ 0 ] net);
    (* ablation: the arbitration-adversary dimension of the search *)
    case "search/figure2-fifo-only"
      (let templates = List.map (fun i -> Explorer.intent_template fig2 i) fig2.intents in
       let sp = { (Explorer.default_space templates) with priorities = Explorer.Fifo_only } in
       fun () -> Explorer.explore fig2_rt sp);
    (* the PR-7 synthesis pipeline: full synthesize (check + routing +
       self-audit) on the big mesh, and the bare existence checker on the
       torus, whose wrap channels make the valley heuristics work hardest *)
    case "analysis/synth-mesh8x8" (fun () -> Synth.synthesize mesh8.Builders.topo);
    case "analysis/check-torus5x5" (fun () -> Synth.check torus5.Builders.topo);
  ]

(* fast cases that still cover the PR-3 surfaces: CDG machinery, the engine
   hot path, and the pooled sweep both sequential and parallel *)
let smoke =
  [
    "cdg/build-figure1";
    "cdg/cycles-figure1";
    "sim/engine-hotpath";
    "sim/vct-hotpath";
    "sim/saf-hotpath";
    "sim/detect-overhead";
    "sim/stats-overhead";
    "sim/adaptive-hotpath";
    "sim/mesh8x8-uniform-300c";
    "sim/torus5x5-tornado-deadlock";
    "sweep/figure2-seq";
    "sweep/figure2-parallel";
  ]

let chosen_cases ~quick =
  if quick then List.filter (fun c -> List.mem c.c_name smoke) entries else entries

(* One observed execution of a case: fold its events into a fresh registry
   (with the pool bridge attached, so sweep cases report claim/cancel
   counts) and keep the non-zero counters.  Parallel sweeps make some of
   these schedule-dependent -- like the timings, they describe this
   machine's execution, not a canonical quantity. *)
let counters_of c =
  let reg = Obs.Metrics.create () in
  Obs.install (Obs.metrics_sink reg);
  Obs.attach_pool ();
  Fun.protect
    ~finally:(fun () ->
      Obs.detach_pool ();
      Obs.uninstall ())
    c.c_run;
  List.filter (fun (_, v) -> v <> 0) (Obs.Metrics.snapshot reg)

(* One warmed execution of a case bracketed by GC counters: the per-case
   allocation pressure (words, not bytes) that --json reports alongside the
   timings.  The unmeasured first run charges every lazily built cache
   (routing paths, pool state) to no case, so the measured second run is
   the steady per-run cost -- identical whatever ran before, which is what
   lets bench_gate.py hard-gate these numbers across quick and full
   configurations.  Exact for the simulation cases: the kernel's steady
   cycle is allocation-free, so the delta is per-run setup that does not
   jitter the way timings do. *)
let alloc_of c =
  c.c_run ();
  (* Gc.counters reads the precise allocation totals; quick_stat's copies
     only refresh at collection boundaries and under-report short cases *)
  let minor0, _, major0 = Gc.counters () in
  c.c_run ();
  let minor1, _, major1 = Gc.counters () in
  (minor1 -. minor0, major1 -. major0)

let benchmark ~quick =
  let chosen = chosen_cases ~quick in
  let tests = Test.make_grouped ~name:"wormhole" (List.map (fun c -> c.c_test) chosen) in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| "run" |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    if quick then Benchmark.cfg ~limit:25 ~quota:(Time.second 0.1) ~kde:None ()
    else Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = List.map (fun instance -> Analyze.all ols instance raw) instances in
  Analyze.merge ols instances results

let git_commit () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "unknown" in
    ignore (Unix.close_process_in ic);
    line
  with _ -> "unknown"

let today () =
  let tm = Unix.localtime (Unix.time ()) in
  Printf.sprintf "%04d-%02d-%02d" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1) tm.Unix.tm_mday

let write_json ~quick ~campaigns ~counters ~allocs rows =
  let date = today () in
  let path = Printf.sprintf "BENCH_%s.json" date in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema\": \"wormhole-bench/1\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"date\": %S,\n" date);
  Buffer.add_string buf (Printf.sprintf "  \"commit\": %S,\n" (git_commit ()));
  Buffer.add_string buf (Printf.sprintf "  \"ocaml\": %S,\n" Sys.ocaml_version);
  Buffer.add_string buf (Printf.sprintf "  \"domains\": %d,\n" (Wr_pool.default_domains ()));
  Buffer.add_string buf
    (Printf.sprintf "  \"host_recommended_domains\": %d,\n" (Domain.recommended_domain_count ()));
  Buffer.add_string buf (Printf.sprintf "  \"quick\": %b,\n" quick);
  Buffer.add_string buf "  \"benchmarks\": {\n";
  let n = List.length rows in
  List.iteri
    (fun i (name, ns) ->
      Buffer.add_string buf
        (Printf.sprintf "    %S: %s%s\n" name
           (if Float.is_nan ns then "null" else Printf.sprintf "%.1f" ns)
           (if i = n - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  },\n";
  Buffer.add_string buf "  \"alloc\": {\n";
  let na = List.length allocs in
  List.iteri
    (fun i (name, (minor, major)) ->
      Buffer.add_string buf
        (Printf.sprintf "    %S: {\"minor_words\": %.0f, \"major_words\": %.0f}%s\n" name
           minor major
           (if i = na - 1 then "" else ",")))
    allocs;
  Buffer.add_string buf "  },\n";
  Buffer.add_string buf "  \"counters\": {\n";
  let ncnt = List.length counters in
  List.iteri
    (fun i (name, kvs) ->
      Buffer.add_string buf (Printf.sprintf "    %S: {" name);
      List.iteri
        (fun j (k, v) ->
          Buffer.add_string buf
            (Printf.sprintf "%s%S: %d" (if j = 0 then "" else ", ") k v))
        kvs;
      Buffer.add_string buf (Printf.sprintf "}%s\n" (if i = ncnt - 1 then "" else ",")))
    counters;
  Buffer.add_string buf "  },\n";
  Buffer.add_string buf "  \"campaigns\": [\n";
  let nc = List.length campaigns in
  List.iteri
    (fun i body ->
      (* splice the wormhole-campaign/1 document verbatim, reindented *)
      String.split_on_char '\n' (String.trim body)
      |> List.iter (fun line -> Buffer.add_string buf (Printf.sprintf "    %s\n" line));
      if i <> nc - 1 then Buffer.add_string buf "    ,\n")
    campaigns;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  path

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let () =
  let quick = ref false and json = ref false and campaigns = ref [] in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
      quick := true;
      parse rest
    | "--json" :: rest ->
      json := true;
      parse rest
    | "--campaign-json" :: path :: rest ->
      campaigns := read_file path :: !campaigns;
      parse rest
    | arg :: _ ->
      Printf.eprintf
        "usage: bench [--quick] [--json] [--campaign-json FILE]... (unknown arg %s)\n" arg;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let results = benchmark ~quick:!quick in
  let table = Table.create ~aligns:[ Table.Left; Table.Right ] [ "benchmark"; "time/run" ] in
  let rows = ref [] in
  Hashtbl.iter
    (fun _metric tbl ->
      Hashtbl.iter
        (fun name ols ->
          let est =
            match Analyze.OLS.estimates ols with
            | Some (e :: _) -> e
            | _ -> nan
          in
          rows := (name, est) :: !rows)
        tbl)
    results;
  let rows = List.sort compare !rows in
  let human ns =
    if Float.is_nan ns then "n/a"
    else if ns < 1e3 then Printf.sprintf "%.0f ns" ns
    else if ns < 1e6 then Printf.sprintf "%.2f us" (ns /. 1e3)
    else if ns < 1e9 then Printf.sprintf "%.2f ms" (ns /. 1e6)
    else Printf.sprintf "%.2f s" (ns /. 1e9)
  in
  List.iter (fun (name, est) -> Table.add_row table [ name; human est ]) rows;
  Table.print table;
  if !json then begin
    (* one extra observed execution per case for the work counters, and one
       plain execution for the allocation deltas (the metrics sink itself
       allocates, so the two cannot share a run) *)
    let cases = chosen_cases ~quick:!quick in
    let counters = List.map (fun c -> (c.c_name, counters_of c)) cases in
    let allocs = List.map (fun c -> (c.c_name, alloc_of c)) cases in
    let path =
      write_json ~quick:!quick ~campaigns:(List.rev !campaigns) ~counters ~allocs rows
    in
    Printf.printf "\nbench JSON written to %s\n" path
  end
